package dlearn

import "dlearn/internal/observe"

// Observability: a learning run emits a stream of events — run and phase
// boundaries, covering-loop iterations, hill-climbing progress and clause
// decisions — that an Observer registered with WithObserver receives
// synchronously. The CLI tools use it for progress reporting and the bench
// harness aggregates it into machine-readable timing summaries.
type (
	// Observer receives the events of a learning run.
	Observer = observe.Observer
	// Event is one observation from a learning run.
	Event = observe.Event
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = observe.Func

	// RunStarted is emitted once per run, after validation.
	RunStarted = observe.RunStarted
	// PhaseDone is emitted when a named phase completes.
	PhaseDone = observe.PhaseDone
	// IterationStarted is emitted at the top of each covering iteration.
	IterationStarted = observe.IterationStarted
	// CoverageProgress is emitted after each hill-climbing step.
	CoverageProgress = observe.CoverageProgress
	// CandidateBatchScored is emitted after the candidate scheduler scores
	// one refinement sample's candidates concurrently (see
	// WithCandidateParallelism).
	CandidateBatchScored = observe.CandidateBatchScored
	// ClauseAccepted is emitted when a clause joins the definition.
	ClauseAccepted = observe.ClauseAccepted
	// ClauseRejected is emitted when a candidate fails the acceptance test.
	ClauseRejected = observe.ClauseRejected
	// SnapshotHit is emitted when prepared examples were served from the
	// engine's snapshot store (see WithSnapshotStore).
	SnapshotHit = observe.SnapshotHit
	// SnapshotMiss is emitted when the snapshot store could not serve the
	// prepared examples and they were prepared fresh.
	SnapshotMiss = observe.SnapshotMiss
	// SnapshotWritten is emitted after a miss once the fresh preparation
	// has been written back to the snapshot store.
	SnapshotWritten = observe.SnapshotWritten
	// SnapshotWriteFailed is emitted after a miss when the write-back
	// failed; the run proceeds, but later runs will keep missing until the
	// store is fixed.
	SnapshotWriteFailed = observe.SnapshotWriteFailed
	// ResultCacheHit is emitted by dlearn-serve when a job's result was
	// served from the server's result cache instead of running the engine.
	ResultCacheHit = observe.ResultCacheHit
	// PersistenceDegraded is emitted by dlearn-serve when a persistence
	// write failed and the job was downgraded to best-effort in-memory
	// operation instead of failing.
	PersistenceDegraded = observe.PersistenceDegraded
	// RunFinished is emitted once, just before Learn returns.
	RunFinished = observe.RunFinished
)

// Phase names carried by PhaseDone events.
const (
	// PhaseBottomClauses is ground bottom-clause construction.
	PhaseBottomClauses = observe.PhaseBottomClauses
	// PhaseCovering is the covering loop.
	PhaseCovering = observe.PhaseCovering
)

// MultiObserver combines observers into one that forwards every event to
// each of them in order; nil observers are skipped.
func MultiObserver(obs ...Observer) Observer { return observe.Multi(obs...) }

// DiscardObserver drops every event.
var DiscardObserver Observer = observe.Discard
